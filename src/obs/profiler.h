/**
 * @file
 * Cycle-level stall-attribution profiler (the observability subsystem
 * `sim/observer.h`'s GT-Pin-style hook was stubbed out for).
 *
 * When a Profiler is attached to a Gpu, every resident warp-cycle is
 * attributed to exactly one cause: the warp either issued an
 * instruction or it stalled for a classified reason (scoreboard
 * dependency, LSU/issue structural hazard, exposed bounds-check bubble,
 * RBT-refill round trip, outstanding memory data, DRAM back-pressure,
 * barrier, or no remaining work). The attribution invariant — per warp,
 * the cause cycles sum to the warp's resident cycles — is what makes
 * the paper's pipeline-effect arguments (§6, Figs. 14-18) checkable on
 * any run instead of inferred from end-of-run counters.
 *
 * The profiler additionally records per-SM occupancy/IPC time series at
 * a configurable sampling interval, per-kernel phase spans, and memory
 * subsystem event counters (RCache levels, BCU bubbles, DRAM row
 * hits/rejects/retries). Everything exports as Chrome trace-event JSON
 * loadable in chrome://tracing or Perfetto (see docs/PROFILING.md).
 *
 * Cost model: the simulator holds a nullable `Profiler *` at every
 * instrumentation point (core, BCU, RCache, hierarchy, DRAM); with no
 * profiler attached each hook is a single predictable branch, so the
 * disabled path is free and simulated timing is never perturbed either
 * way — the profiler observes, it does not participate.
 */

#ifndef GPUSHIELD_OBS_PROFILER_H
#define GPUSHIELD_OBS_PROFILER_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace gpushield::obs {

/** Exclusive per-warp-cycle attribution. Order is the export order. */
enum class StallCause : std::uint8_t {
    Issued = 0,       //!< not a stall: the warp issued this cycle
    Scoreboard,       //!< result dependency: operand not ready yet
    LsuBusy,          //!< issue/LSU structural hazard (port occupied)
    BcuStall,         //!< exposed bounds-check bubble (Fig. 12)
    RcacheMiss,       //!< blocked on an RBT-refill memory round trip
    MemPending,       //!< blocked on outstanding load data
    DramBackpressure, //!< blocked while DRAM queues refuse requests
    Barrier,          //!< waiting at a workgroup barrier
    NoWork,           //!< warp finished; workgroup still resident
};

/** Number of StallCause values. */
inline constexpr std::size_t kNumStallCauses = 9;

/** Stable snake_case spelling (trace args / StatSet keys). */
const char *to_string(StallCause cause);

/** Per-warp cause histogram. */
struct WarpStallBreakdown
{
    std::array<std::uint64_t, kNumStallCauses> cycles{};

    std::uint64_t total() const;
};

/** Profiler knobs (api::ProfileOptions maps onto this). */
struct ProfileConfig
{
    Cycle sample_interval = 64; //!< occupancy/IPC sampling period
    bool workgroup_spans = true; //!< emit per-workgroup trace slices
    bool counter_series = true;  //!< emit occupancy/IPC/DRAM counters
};

/** One workgroup residency on one core slot, with per-warp breakdown. */
struct WorkgroupSpan
{
    CoreId core = 0;
    unsigned slot = 0;
    KernelId kernel = 0;
    std::uint32_t wg_index = 0;
    Cycle start = 0;
    Cycle end = 0;
    bool open = true; //!< still resident (kernel killed mid-run otherwise)
    std::vector<WarpStallBreakdown> warps;
};

/** One kernel's execution phase (launch to completion). */
struct KernelSpan
{
    KernelId kernel = 0;
    TenantId tenant = 0; //!< owning tenant (service mode; 0 otherwise)
    std::string name;
    Cycle start = 0;
    Cycle end = 0;
    bool aborted = false;
};

/** One point of a sampled counter time series. */
struct CounterSample
{
    Cycle ts = 0;
    double value = 0.0;
};

/** Aggregate roll-up carried on api::LaunchResult. */
struct ProfileSummary
{
    bool enabled = false;
    Cycle cycles = 0;               //!< profiled cycles
    std::uint64_t warp_cycles = 0;  //!< Σ resident warp-cycles
    std::array<std::uint64_t, kNumStallCauses> cause_cycles{};

    /** Fraction of warp-cycles spent on @p cause (0 when no cycles). */
    double fraction(StallCause cause) const;

    /** "stall.<cause>" counters plus warp_cycles/profiled_cycles —
     *  the form the harness feeds into RunRecord / MetricsRegistry. */
    StatSet to_statset() const;
};

/**
 * The stall-attribution profiler. Attach via api::Context (the
 * LaunchOptions::profile block) or Gpu::set_profiler for direct
 * simulator embedding. One Profiler may span several sequential
 * launches: set_time_base() shifts each launch onto a common timeline.
 */
class Profiler
{
  public:
    explicit Profiler(ProfileConfig cfg = {});

    const ProfileConfig &config() const { return cfg_; }

    /** Offset added to every recorded cycle (multi-launch timelines). */
    void set_time_base(Cycle base) { base_ = base; }
    Cycle time_base() const { return base_; }

    /// @name Instrumentation hooks (called by the simulator when attached)
    /// @{
    void on_workgroup_start(CoreId core, unsigned slot, KernelId kernel,
                            std::uint32_t wg_index, unsigned warps,
                            Cycle now);

    /** One resident warp, one cycle, one exclusive cause. */
    void
    on_warp_cycle(CoreId core, unsigned slot, unsigned warp,
                  StallCause cause)
    {
        CoreState &cs = core_state(core);
        WorkgroupSpan &wg = workgroups_[cs.active[slot]];
        ++wg.warps[warp].cycles[static_cast<std::size_t>(cause)];
        ++cs.totals[static_cast<std::size_t>(cause)];
        ++cs.interval_warp_cycles;
        if (cause == StallCause::Issued)
            ++cs.interval_issued;
    }

    void on_workgroup_end(CoreId core, unsigned slot, Cycle now);

    /** Kernel phase span (recorded once, at kernel completion). */
    void on_kernel_span(KernelId kernel, const std::string &name,
                        Cycle start, Cycle end, bool aborted,
                        TenantId tenant = 0);

    /** Cycle boundary: flushes sampling accumulators into the series.
     *  @p dram_queued is the DRAM controller's instantaneous queue
     *  occupancy (requests waiting or in service). */
    void end_cycle(Cycle now, unsigned dram_queued);

    /** Memory-instruction coalescing outcome (LSU front-end). */
    void
    on_coalesce(unsigned lanes, unsigned lines)
    {
        ++c_mem_instrs_;
        c_mem_lanes_ += lanes;
        c_mem_lines_ += lines;
    }

    /** One BCU runtime check (Fig. 12 timing outcome). */
    void
    on_bcu_check(Cycle stall_cycles, bool violation)
    {
        ++c_bcu_checks_;
        c_bcu_stall_cycles_ += stall_cycles;
        if (stall_cycles > 0)
            ++c_bcu_exposed_;
        if (violation)
            ++c_bcu_violations_;
    }

    /** RCache lookup outcome: 0 = L1 hit, 1 = L2 hit, 2 = miss. */
    void
    on_rcache_lookup(int level)
    {
        ++c_rcache_lookups_;
        if (level == 0)
            ++c_rcache_l1_hits_;
        else if (level == 1)
            ++c_rcache_l2_hits_;
        else
            ++c_rcache_misses_;
    }

    /** Hierarchy transaction issued (L1 outcome known immediately). */
    void
    on_mem_access(bool l1_hit)
    {
        ++c_mem_accesses_;
        if (l1_hit)
            ++c_mem_l1_hits_;
    }

    /** DRAM controller serviced a request. */
    void
    on_dram_service(bool row_hit)
    {
        ++c_dram_services_;
        if (row_hit)
            ++c_dram_row_hits_;
    }

    /** DRAM channel queue rejected an enqueue (back-pressure). */
    void
    on_dram_reject()
    {
        ++c_dram_rejects_;
    }

    /** Hierarchy re-tried a rejected DRAM request. */
    void
    on_dram_retry()
    {
        ++c_dram_retries_;
        ++interval_dram_retries_;
    }
    /// @}

    /// @name Results
    /// @{
    ProfileSummary summary() const;

    /** All workgroup residencies recorded so far, in start order. */
    const std::vector<WorkgroupSpan> &workgroups() const
    {
        return workgroups_;
    }

    /** All kernel phase spans recorded so far. */
    const std::vector<KernelSpan> &kernels() const { return kernels_; }

    /** Aggregate cause histogram of one core. */
    std::array<std::uint64_t, kNumStallCauses>
    core_stalls(CoreId core) const;

    /** Event counters (bcu_checks, rcache_l1_hits, dram_row_hits, ...). */
    const StatSet &events() const { return events_; }

    /**
     * Emits everything as Chrome trace-event JSON: pid 0 holds kernel
     * phase spans (tid = kernel id), pid 100+c holds SM c's workgroup
     * slices (tid = workgroup slot) and its occupancy/IPC counters, and
     * pid 50 holds DRAM queue/retry counters. Workgroup slice args
     * carry the per-warp stall breakdown.
     */
    void write_chrome_trace(std::ostream &os) const;

    /** Drops all recorded data (config and time base survive). */
    void clear();
    /// @}

  private:
    struct CoreState
    {
        /** slot -> index into workgroups_, or -1 when the slot is free. */
        std::vector<int> active;
        std::array<std::uint64_t, kNumStallCauses> totals{};
        std::uint64_t interval_warp_cycles = 0;
        std::uint64_t interval_issued = 0;
        std::vector<CounterSample> occupancy; //!< avg resident warps
        std::vector<CounterSample> ipc;       //!< instructions / cycle
    };

    CoreState &core_state(CoreId core);

    ProfileConfig cfg_;
    Cycle base_ = 0;
    Cycle profiled_cycles_ = 0;
    Cycle last_ts_ = 0;

    std::vector<CoreState> cores_;
    std::vector<WorkgroupSpan> workgroups_;
    std::vector<KernelSpan> kernels_;

    std::vector<CounterSample> dram_queue_series_;
    std::vector<CounterSample> dram_retry_series_;
    std::uint64_t interval_dram_retries_ = 0;

    StatSet events_;
    StatSet::Counter c_mem_instrs_, c_mem_lanes_, c_mem_lines_,
        c_bcu_checks_, c_bcu_stall_cycles_, c_bcu_exposed_,
        c_bcu_violations_, c_rcache_lookups_, c_rcache_l1_hits_,
        c_rcache_l2_hits_, c_rcache_misses_, c_mem_accesses_,
        c_mem_l1_hits_, c_dram_services_, c_dram_row_hits_,
        c_dram_rejects_, c_dram_retries_;
};

} // namespace gpushield::obs

#endif // GPUSHIELD_OBS_PROFILER_H
