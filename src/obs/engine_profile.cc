#include "obs/engine_profile.h"

#include <sstream>

namespace gpushield::obs {

const char *
HostEngineProfiler::phase_name(Phase p)
{
    switch (p) {
      case Phase::Dispatch: return "dispatch";
      case Phase::Issue: return "issue";
      case Phase::BarrierWait: return "barrier_wait";
      case Phase::Drain: return "drain";
      case Phase::Events: return "events";
      case Phase::Detach: return "detach";
    }
    return "?";
}

std::uint64_t
HostEngineProfiler::total_ns() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t v : ns_)
        total += v;
    return total;
}

std::string
HostEngineProfiler::report() const
{
    const std::uint64_t total = total_ns();
    std::ostringstream os;
    os << "engine host profile (" << cycles_simulated_
       << " cycles ticked, " << cycles_skipped_ << " skipped)\n";
    for (unsigned i = 0; i < kPhases; ++i) {
        const double share =
            total == 0 ? 0.0
                       : 100.0 * static_cast<double>(ns_[i]) /
                             static_cast<double>(total);
        os << "  " << phase_name(static_cast<Phase>(i)) << ": "
           << ns_[i] / 1000 << " us (" << static_cast<int>(share + 0.5)
           << "%) over " << calls_[i] << " calls\n";
    }
    return os.str();
}

std::string
HostEngineProfiler::json() const
{
    std::ostringstream os;
    os << "{";
    for (unsigned i = 0; i < kPhases; ++i)
        os << "\"" << phase_name(static_cast<Phase>(i)) << "_ns\":"
           << ns_[i] << ",";
    os << "\"cycles_simulated\":" << cycles_simulated_
       << ",\"cycles_skipped\":" << cycles_skipped_ << "}";
    return os.str();
}

} // namespace gpushield::obs
