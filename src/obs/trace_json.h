/**
 * @file
 * Minimal JSON parser + Chrome-trace structural validator.
 *
 * Just enough JSON to round-trip Profiler::write_chrome_trace output in
 * tests and the `gpushield-profile --check` gate: objects, arrays,
 * strings (with the escapes the writer emits), numbers, booleans, null.
 * Not a general-purpose parser — no \uXXXX escapes, no streaming.
 */

#ifndef GPUSHIELD_OBS_TRACE_JSON_H
#define GPUSHIELD_OBS_TRACE_JSON_H

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gpushield::obs {

/** One parsed JSON value (tree-owned). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion order is not preserved; trace checks don't need it. */
    std::map<std::string, JsonValue> object;

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    bool is(Kind k) const { return kind == k; }
};

/** Parses @p text; throws SimulationError on malformed input. */
JsonValue parse_json(std::string_view text);

/**
 * Validates @p root as a Chrome trace: `traceEvents` is an array; every
 * event has name/ph/pid/tid; "X" events carry numeric ts+dur and, per
 * (pid,tid) track, nest strictly (each span is fully inside or fully
 * outside every other). On failure returns false and, when @p error is
 * non-null, describes the first problem.
 */
bool validate_trace(const JsonValue &root, std::string *error = nullptr);

} // namespace gpushield::obs

#endif // GPUSHIELD_OBS_TRACE_JSON_H
