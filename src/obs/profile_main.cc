/**
 * @file
 * gpushield-profile: stall-attribution profiling CLI (docs/PROFILING.md).
 *
 * Single-benchmark mode — profile one named benchmark and export a
 * Chrome trace (load it in https://ui.perfetto.dev):
 *
 *   gpushield-profile --benchmark hotspot --out hotspot.json --summary
 *
 * Suite mode — profile every single-kernel cell of a sweep suite and
 * write one trace per cell (the CI profile-smoke stage):
 *
 *   gpushield-profile --suite smoke --out-dir build/profile-smoke --check
 *
 * --check re-parses every emitted trace (obs/trace_json.h) and verifies
 * the attribution invariant: each warp's cause cycles sum to its
 * workgroup's residency.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/gpushield_api.h"
#include "harness/suites.h"
#include "obs/profiler.h"
#include "obs/trace_json.h"
#include "workloads/runner.h"
#include "workloads/suites.h"

namespace {

using namespace gpushield;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --benchmark NAME [options]\n"
        "       %s --suite NAME --out-dir DIR [--check]\n"
        "single-benchmark mode:\n"
        "  --benchmark NAME  benchmark to profile\n"
        "  --set NAME        benchmark set: cuda | opencl | fig19\n"
        "                    (default: search all sets)\n"
        "  --config NAME     machine config: nvidia | intel\n"
        "  --no-shield       run the unprotected baseline\n"
        "  --static          enable static-analysis check elision\n"
        "  --launches N      back-to-back launches (default 1)\n"
        "  --interval N      occupancy/IPC sampling period (default 64)\n"
        "  --out PATH        Chrome trace output ('-' = stdout)\n"
        "  --summary         print the stall-cause breakdown\n"
        "suite mode:\n"
        "  --suite NAME      sweep suite (see gpushield-sweep --list)\n"
        "  --out-dir DIR     one trace file per single-kernel cell\n"
        "  --check           validate every emitted trace; exit 1 on\n"
        "                    malformed JSON or broken attribution\n",
        argv0, argv0);
    return 2;
}

const workloads::BenchmarkDef *
find_bench(const std::string &set, const std::string &name)
{
    const auto in = [&](const std::vector<workloads::BenchmarkDef> &defs)
        -> const workloads::BenchmarkDef * {
        for (const workloads::BenchmarkDef &d : defs)
            if (d.name == name)
                return &d;
        return nullptr;
    };
    if (set == "cuda")
        return in(workloads::cuda_benchmarks());
    if (set == "opencl")
        return in(workloads::opencl_benchmarks());
    if (set == "fig19")
        return in(workloads::rodinia_fig19_benchmarks());
    if (set.empty()) {
        if (const auto *d = in(workloads::cuda_benchmarks()))
            return d;
        if (const auto *d = in(workloads::opencl_benchmarks()))
            return d;
        return in(workloads::rodinia_fig19_benchmarks());
    }
    std::fprintf(stderr, "gpushield-profile: unknown set %s\n", set.c_str());
    return nullptr;
}

void
print_summary(const obs::ProfileSummary &s, const StatSet &events)
{
    std::printf("profiled %llu cycles, %llu warp-cycles\n",
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.warp_cycles));
    for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
        if (s.cause_cycles[c] == 0)
            continue;
        std::printf("  %-18s %6.2f%%  (%llu)\n",
                    obs::to_string(static_cast<obs::StallCause>(c)),
                    100.0 * s.fraction(static_cast<obs::StallCause>(c)),
                    static_cast<unsigned long long>(s.cause_cycles[c]));
    }
    if (!events.counters().empty()) {
        std::printf("events:\n");
        for (const auto &[name, value] : events.counters())
            std::printf("  %-18s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
}

/**
 * Checks what the trace alone cannot express: per warp, the recorded
 * cause cycles sum exactly to the workgroup's residency.
 */
bool
check_attribution(const obs::Profiler &prof, std::string *error)
{
    for (const obs::WorkgroupSpan &wg : prof.workgroups()) {
        if (wg.open)
            continue;
        const Cycle resident = wg.end - wg.start;
        for (std::size_t w = 0; w < wg.warps.size(); ++w) {
            if (wg.warps[w].total() == resident)
                continue;
            std::ostringstream os;
            os << "core " << wg.core << " wg " << wg.wg_index << " warp "
               << w << ": attributed " << wg.warps[w].total()
               << " cycles, resident " << resident;
            *error = os.str();
            return false;
        }
    }
    return true;
}

bool
check_trace_file(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
        const obs::JsonValue root = obs::parse_json(buf.str());
        return obs::validate_trace(root, error);
    } catch (const SimulationError &e) {
        *error = e.what();
        return false;
    }
}

std::string
sanitize(const std::string &key)
{
    std::string out = key;
    for (char &c : out)
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '.' &&
            c != '-' && c != '_')
            c = '_';
    return out;
}

int
run_single(const std::string &bench, const std::string &set,
           const std::string &config, bool shield, bool use_static,
           unsigned launches, Cycle interval, const std::string &out_path,
           bool summary)
{
    const workloads::BenchmarkDef *def = find_bench(set, bench);
    if (def == nullptr) {
        std::fprintf(stderr, "gpushield-profile: unknown benchmark %s\n",
                     bench.c_str());
        return 2;
    }
    if (config != "nvidia" && config != "intel") {
        std::fprintf(stderr, "gpushield-profile: unknown config %s\n",
                     config.c_str());
        return 2;
    }

    api::Context ctx(config == "intel" ? intel_config() : nvidia_config());
    const workloads::WorkloadInstance inst = def->make(ctx.driver());

    // WorkloadInstance stores buffers by buffer_index and scalars by arg
    // position; rebuild the positional Arg list the api expects.
    std::vector<api::Arg> args;
    for (std::size_t i = 0; i < inst.program.args.size(); ++i) {
        const KernelArgSpec &spec = inst.program.args[i];
        if (spec.is_pointer)
            args.push_back(api::arg(inst.buffers.at(
                static_cast<std::size_t>(spec.buffer_index))));
        else
            args.push_back(api::arg(inst.scalars.at(i),
                                    inst.scalar_static.at(i)
                                        ? api::Static::yes
                                        : api::Static::no));
    }

    api::LaunchOptions opts;
    opts.shield = shield;
    opts.static_analysis = use_static;
    opts.replace_sw_checks = inst.replace_sw_checks;
    opts.heap_bytes = inst.heap_bytes;
    opts.profile.enabled = true;
    opts.profile.sample_interval = interval;

    api::LaunchResult last;
    for (unsigned i = 0; i < launches; ++i) {
        last = ctx.launch(inst.program, {inst.ntid, inst.nctaid}, args, opts);
        if (!last.ok())
            std::fprintf(stderr, "gpushield-profile: launch %u: %s (%s)\n",
                         i, api::to_string(last.status),
                         last.status_message.c_str());
    }

    if (out_path == "-") {
        ctx.profiler()->write_chrome_trace(std::cout);
    } else {
        std::ofstream out(out_path);
        if (!out.is_open()) {
            std::fprintf(stderr, "gpushield-profile: cannot open %s\n",
                         out_path.c_str());
            return 2;
        }
        ctx.profiler()->write_chrome_trace(out);
        std::fprintf(stderr, "gpushield-profile: wrote %s\n",
                     out_path.c_str());
    }
    if (summary)
        print_summary(last.profile, ctx.profiler()->events());
    return last.ok() ? 0 : 1;
}

int
run_suite(const std::string &suite_name, const std::string &out_dir,
          bool check)
{
    const harness::SuiteDef *suite = harness::find_suite(suite_name);
    if (suite == nullptr) {
        std::fprintf(stderr,
                     "gpushield-profile: unknown suite %s "
                     "(gpushield-sweep --list)\n",
                     suite_name.c_str());
        return 2;
    }
    std::filesystem::create_directories(out_dir);

    const harness::SweepSpec spec = suite->make();
    unsigned written = 0, skipped = 0, failed = 0;
    for (const harness::CellSpec &cell : spec.cells) {
        const std::string key = harness::cell_key(spec, cell);
        if (!cell.workload_b.empty()) {
            // Pair cells interleave two kernels on one timeline; the
            // per-cell trace story is single-kernel for now.
            std::fprintf(stderr, "skip  %s (multi-kernel cell)\n",
                         key.c_str());
            ++skipped;
            continue;
        }

        const std::string path = out_dir + "/" + sanitize(key) + ".json";
        try {
            const GpuConfig &cfg = spec.config(cell.config);
            GpuDevice dev(cfg.mem.page_size);
            Driver driver(dev, harness::cell_seed(spec, cell));
            const workloads::BenchmarkDef *def =
                find_bench(cell.set, cell.workload);
            if (def == nullptr)
                throw SimulationError("no benchmark " + cell.workload +
                                      " in set " + cell.set);
            const workloads::WorkloadInstance inst = def->make(driver);

            obs::Profiler prof;
            if (cell.launches > 1)
                workloads::run_workload_n(cfg, driver, inst, cell.launches,
                                          cell.shield, cell.use_static, 0, 0,
                                          &prof);
            else
                workloads::run_workload(cfg, driver, inst, cell.shield,
                                        cell.use_static, 0, 0, &prof);

            std::string error;
            if (check && !check_attribution(prof, &error))
                throw SimulationError("attribution broken: " + error);

            std::ofstream out(path);
            if (!out.is_open())
                throw SimulationError("cannot open " + path);
            prof.write_chrome_trace(out);
            out.close();

            if (check && !check_trace_file(path, &error))
                throw SimulationError("invalid trace: " + error);

            std::fprintf(stderr, "ok    %s -> %s\n", key.c_str(),
                         path.c_str());
            ++written;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "FAIL  %s: %s\n", key.c_str(), e.what());
            ++failed;
        }
    }

    std::printf("profile suite %s: %u traces, %u skipped, %u failed%s\n",
                suite_name.c_str(), written, skipped, failed,
                check ? " (checked)" : "");
    return failed == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench, set, config = "nvidia", suite_name, out_path = "-",
                out_dir;
    unsigned launches = 1;
    gpushield::Cycle interval = 64;
    bool shield = true, use_static = false, summary = false, check = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gpushield-profile: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark")
            bench = value();
        else if (arg == "--set")
            set = value();
        else if (arg == "--config")
            config = value();
        else if (arg == "--suite")
            suite_name = value();
        else if (arg == "--no-shield")
            shield = false;
        else if (arg == "--static")
            use_static = true;
        else if (arg == "--launches")
            launches = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (arg == "--interval")
            interval = std::strtoull(value(), nullptr, 10);
        else if (arg == "--out")
            out_path = value();
        else if (arg == "--out-dir")
            out_dir = value();
        else if (arg == "--summary")
            summary = true;
        else if (arg == "--check")
            check = true;
        else
            return usage(argv[0]);
    }

    if (!suite_name.empty()) {
        if (out_dir.empty())
            return usage(argv[0]);
        return run_suite(suite_name, out_dir, check);
    }
    if (bench.empty())
        return usage(argv[0]);
    return run_single(bench, set, config, shield, use_static,
                      std::max(1u, launches),
                      std::max<gpushield::Cycle>(1, interval), out_path,
                      summary);
}
