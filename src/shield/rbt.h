/**
 * @file
 * Region Bounds Table (§5.2.2, §5.2.3).
 *
 * A per-kernel, 16384-entry direct-mapped table in device global memory,
 * indexed by the (decrypted) 14-bit buffer ID. Each entry holds the
 * buffer's 48-bit virtual base address, its 32-bit size, and valid /
 * read-only flags physically packed into the base-address word (Fig. 6).
 * The driver populates the table at kernel launch; the BCU's RCaches
 * refill from it through physically-addressed memory accesses.
 */

#ifndef GPUSHIELD_SHIELD_RBT_H
#define GPUSHIELD_SHIELD_RBT_H

#include <cstdint>

#include "common/types.h"
#include "mem/physical_memory.h"

namespace gpushield {

/** Bounds metadata for one buffer (Fig. 6). */
struct Bounds
{
    VAddr base_addr = 0;     //!< 48-bit virtual base
    std::uint32_t size = 0;  //!< buffer size in bytes
    bool valid = false;
    bool read_only = false;
    KernelId kernel = 0;     //!< owning kernel (full 16-bit ID kept)

    /** True when [addr, addr+bytes) lies inside the region. */
    bool
    contains(VAddr addr, std::uint64_t bytes = 1) const
    {
        return valid && addr >= base_addr &&
               addr + bytes <= base_addr + size;
    }
};

/** Device-memory-resident Region Bounds Table. */
class RegionBoundsTable
{
  public:
    /** Bytes per serialized entry. */
    static constexpr std::uint64_t kEntryBytes = 16;

    /** Total table footprint in bytes. */
    static constexpr std::uint64_t kTableBytes = kNumBufferIds * kEntryBytes;

    /**
     * @param mem  backing device memory
     * @param base physical base address of the table
     */
    RegionBoundsTable(PhysicalMemory &mem, PAddr base);

    /** Writes entry @p id. */
    void set(BufferId id, const Bounds &bounds);

    /** Reads entry @p id (invalid entries return valid=false). */
    Bounds get(BufferId id) const;

    /** Invalidates every entry the driver previously set. */
    void clear_all();

    /** Physical address of entry @p id (for RCache refill traffic). */
    PAddr
    entry_paddr(BufferId id) const
    {
        return base_ + static_cast<std::uint64_t>(id & kBufferIdMask) *
                           kEntryBytes;
    }

    PAddr base() const { return base_; }

  private:
    PhysicalMemory &mem_;
    PAddr base_;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_RBT_H
