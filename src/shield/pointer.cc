#include "shield/pointer.h"

#include <sstream>

#include "common/bitutil.h"
#include "common/log.h"

namespace gpushield {

namespace {

constexpr unsigned kClassShift = 62;
constexpr unsigned kFieldShift = kVAddrBits;

std::uint64_t
compose(PtrClass cls, std::uint16_t field, VAddr addr)
{
    return (static_cast<std::uint64_t>(cls) << kClassShift) |
           (static_cast<std::uint64_t>(field & kBufferIdMask) << kFieldShift) |
           (addr & kVAddrMask);
}

} // namespace

std::uint64_t
make_unprotected_ptr(VAddr addr)
{
    return compose(PtrClass::Unprotected, 0, addr);
}

std::uint64_t
make_tagged_ptr(VAddr addr, std::uint16_t encrypted_id)
{
    return compose(PtrClass::TaggedId, encrypted_id, addr);
}

std::uint64_t
make_sized_ptr(VAddr addr, unsigned log2_size)
{
    if (log2_size >= 48)
        fatal("make_sized_ptr: window exponent too large");
    return compose(PtrClass::SizedWindow,
                   static_cast<std::uint16_t>(log2_size), addr);
}

PtrClass
ptr_class(std::uint64_t ptr)
{
    const auto c = bits(ptr, kClassShift, 2);
    return c <= 2 ? static_cast<PtrClass>(c) : PtrClass::Unprotected;
}

std::uint16_t
ptr_field(std::uint64_t ptr)
{
    return static_cast<std::uint16_t>(bits(ptr, kFieldShift, kBufferIdBits));
}

VAddr
ptr_addr(std::uint64_t ptr)
{
    return ptr & kVAddrMask;
}

std::string
ptr_to_string(std::uint64_t ptr)
{
    std::ostringstream os;
    switch (ptr_class(ptr)) {
      case PtrClass::Unprotected:
        os << "T1";
        break;
      case PtrClass::TaggedId:
        os << "T2[id=0x" << std::hex << ptr_field(ptr) << std::dec << "]";
        break;
      case PtrClass::SizedWindow:
        os << "T3[log2=" << ptr_field(ptr) << "]";
        break;
    }
    os << "+0x" << std::hex << ptr_addr(ptr);
    return os.str();
}

} // namespace gpushield
