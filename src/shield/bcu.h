/**
 * @file
 * Compatibility header: the Bounds-Checking Unit now lives behind the
 * pluggable shield-backend seam as `RegionShieldBackend`
 * (shield/region_backend.h); `BoundsCheckUnit` remains as an alias for
 * existing tests/benches. The shared request/response/violation types
 * moved to shield/backend.h. New code should use `ShieldBackend`.
 */

#ifndef GPUSHIELD_SHIELD_BCU_H
#define GPUSHIELD_SHIELD_BCU_H

#include "shield/region_backend.h"

namespace gpushield {

using BoundsCheckUnit = RegionShieldBackend;

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_BCU_H
