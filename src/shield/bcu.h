/**
 * @file
 * Bounds-Checking Unit (§5.5).
 *
 * The BCU sits beside each core's LSU. For every memory instruction it
 * receives the tagged pointer, the warp's coalesced address range
 * (min/max across active lanes — the paper's workgroup/warp-level
 * checking), and enough LSU context to decide whether the check latency
 * is exposed as a pipeline bubble (Fig. 12).
 *
 * Type 2 pointers: the embedded ID is decrypted with the per-kernel key
 * and looked up in the RCache hierarchy; an L2 RCache miss triggers an
 * RBT refill (physically addressed, bypassing translation). Type 3
 * pointers carry log2(window) and are checked against base+offset
 * operands with no RCache access. Type 1 pointers skip checking.
 *
 * Timing model: the check completes `rcache_latency` cycles after AGEN.
 * The LSU pipeline shadows `pipeline_slack` cycles for a D-cache hit
 * plus one cycle per additional coalesced transaction; anything beyond
 * that is an exposed stall. With the default 1-cycle L1 RCache this
 * reproduces the paper's "one bubble only on single-transaction D-cache
 * hit with L1 RCache miss" behaviour.
 */

#ifndef GPUSHIELD_SHIELD_BCU_H
#define GPUSHIELD_SHIELD_BCU_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "shield/cipher.h"
#include "shield/rbt.h"
#include "shield/rcache.h"

namespace gpushield::obs {
class Profiler;
}

namespace gpushield {

/** Classification of a detected memory-safety violation. */
enum class ViolationKind : std::uint8_t {
    OutOfBounds,   //!< address range escapes the buffer region
    ReadOnlyWrite, //!< store to a read-only buffer
    InvalidEntry,  //!< decrypted ID hit an invalid RBT entry (forged ptr)
    KernelMismatch //!< entry belongs to another kernel
};

/** One logged violation (error-logging mode of §5.5.2). */
struct Violation
{
    KernelId kernel = 0;
    /** Tenant that issued the faulting access (service mode; 0 =
     *  single-tenant). Makes cross-tenant attacks attributable. */
    TenantId tenant = 0;
    CoreId core = 0;
    int pc = -1;
    WarpId warp = 0;
    bool is_store = false;
    VAddr min_addr = 0;
    VAddr max_end = 0;
    ViolationKind kind = ViolationKind::OutOfBounds;
};

/** Everything the LSU hands the BCU for one memory instruction. */
struct BcuRequest
{
    KernelId kernel = 0;
    TenantId tenant = 0;
    CoreId core = 0;
    WarpId warp = 0;
    int pc = -1;

    std::uint64_t pointer = 0; //!< tagged address-register value
    VAddr min_addr = 0;        //!< lowest byte touched by the warp
    VAddr max_end = 0;         //!< one past the highest byte touched
    bool is_store = false;

    unsigned num_transactions = 1; //!< coalesced transaction count
    bool dcache_hit = false;       //!< first transaction L1 D-cache hit

    /** Base+offset (Method C / Type 3) operands, when the instruction
     *  uses that addressing mode. Offsets are relative to the base. */
    bool has_base_offset = false;
    std::int64_t min_offset = 0;
    std::int64_t max_offset_end = 0; //!< one past the highest offset byte

    /** Method A (binding table): the driver-managed BT entry supplies
     *  exact bounds, so the check is direct — no decrypt, no RCache. */
    bool has_bt_bounds = false;
    Bounds bt_bounds;

    /**
     * §6.4 guard replacement: the compiler removed a redundant software
     * guard because GPUShield subsumes it. Violations through this
     * instruction are the *expected* squashes of the formerly-guarded
     * lanes — suppress without logging (counted separately).
     */
    bool silent = false;
};

/** BCU verdict and timing for one memory instruction. */
struct BcuResponse
{
    bool checked = false;   //!< a runtime check was performed
    bool violation = false;
    ViolationKind kind = ViolationKind::OutOfBounds;
    Cycle stall_cycles = 0; //!< exposed pipeline bubble at issue
    bool refill = false;    //!< RBT refill traffic required (L2 RCache miss)
    PAddr refill_paddr = 0; //!< RBT entry address for the refill

    /**
     * Valid region for lane-granular squashing: detection happens at
     * warp granularity (min/max), but the store pipeline knows each
     * lane's address, so only lanes outside [region_base, region_end)
     * are dropped / zero-filled. Unset when no region applies (invalid
     * entry, kernel mismatch, read-only write): then every lane
     * squashes.
     */
    bool region_known = false;
    VAddr region_base = 0;
    VAddr region_end = 0;
};

/** Per-core bounds-checking unit. */
class BoundsCheckUnit
{
  public:
    /**
     * @param cfg            RCache geometry/latencies
     * @param pipeline_slack LSU cycles that shadow the check on a D-cache
     *                       hit (paper: check hides unless it exceeds the
     *                       LSU pipe; 2 reproduces Fig. 12)
     */
    explicit BoundsCheckUnit(const RCacheConfig &cfg,
                             Cycle pipeline_slack = 2);

    /** Registers a kernel resident on this core (key + its RBT). */
    void register_kernel(KernelId kernel, std::uint64_t key,
                         const RegionBoundsTable *rbt);

    /** Removes a kernel and invalidates its RCache entries (kernel
     *  termination; co-resident kernels keep theirs, §6.2). */
    void deregister_kernel(KernelId kernel);

    /** Performs the bounds check for one memory instruction. */
    BcuResponse check(const BcuRequest &req);

    /** Violations logged so far (error-logging mode). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Clears the violation log (read out by the host at kernel end). */
    void clear_violations() { violations_.clear(); }

    /** Attaches a stall-attribution profiler (propagated to the
     *  RCache); nullptr detaches. */
    void set_profiler(obs::Profiler *prof);

    RCache &rcache() { return rcache_; }
    const RCache &rcache() const { return rcache_; }
    const StatSet &stats() const { return stats_; }

  private:
    struct KernelState
    {
        IdCipher cipher;
        const RegionBoundsTable *rbt = nullptr;
    };

    void log(const BcuRequest &req, ViolationKind kind);
    Cycle exposed_stall(const BcuRequest &req, Cycle check_latency) const;

    RCache rcache_;
    obs::Profiler *prof_ = nullptr;
    Cycle pipeline_slack_;
    std::unordered_map<KernelId, KernelState> kernels_;
    std::vector<Violation> violations_;
    StatSet stats_;
    // Interned per-check counters (resolved once; bumped per event).
    StatSet::Counter c_checks_, c_bt_checks_, c_type2_checks_,
        c_type3_checks_, c_skipped_unprotected_, c_guard_suppressed_,
        c_violations_, c_stall_cycles_;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_BCU_H
