/**
 * @file
 * RBT cache (RCache) hierarchy (§5.5).
 *
 * Each core's BCU embeds a tiny two-level cache of RBT entries: a
 * 4-entry FIFO L1 with parallel tag/data lookup, and a 64-entry fully
 * associative L2 split into tag and data arrays. Entries are matched on
 * (kernel ID, buffer ID) so concurrently resident kernels can share a
 * core (§6.2). Kernel termination invalidates only the terminating
 * kernel's entries (co-resident kernels keep their cached bounds);
 * context switches flush everything.
 */

#ifndef GPUSHIELD_SHIELD_RCACHE_H
#define GPUSHIELD_SHIELD_RCACHE_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "shield/rbt.h"

namespace gpushield::obs {
class Profiler;
}

namespace gpushield {

/** RCache geometry and latencies (latencies are from AGEN, in cycles). */
struct RCacheConfig
{
    unsigned l1_entries = 4;
    unsigned l2_entries = 64;
    Cycle l1_latency = 1; //!< check completes this many cycles after AGEN
    Cycle l2_latency = 3; //!< L1 miss, L2 tag + data access

    /**
     * §6.2 intra-core sharing mitigation: bank-level partitioning.
     * With P > 1 the RCache is replicated P times (the paper's
     * "double and partition") and each kernel hashes to one bank, so
     * co-resident kernels stop evicting each other's bounds metadata.
     */
    unsigned partitions = 1;
};

/** Where a lookup was satisfied. */
enum class RCacheLevel : std::uint8_t { L1, L2, Miss };

/** Lookup outcome. */
struct RCacheResult
{
    RCacheLevel level = RCacheLevel::Miss;
    Bounds bounds; //!< valid only when level != Miss
};

/** Per-core two-level RBT cache. */
class RCache
{
  public:
    explicit RCache(const RCacheConfig &cfg);

    /**
     * Looks up bounds for @p id of kernel @p kernel. An L2 hit promotes
     * the entry into the L1 FIFO.
     */
    RCacheResult lookup(KernelId kernel, BufferId id);

    /** Inserts a refilled RBT entry (L2 + L1). */
    void fill(KernelId kernel, BufferId id, const Bounds &bounds);

    /** Drops everything (context switch, §5.5). */
    void flush();

    /**
     * Drops only @p kernel's entries (kernel termination, §5.5) so
     * concurrently-resident kernels keep their cached bounds (§6.2).
     */
    void invalidate_kernel(KernelId kernel);

    /** Attaches a stall-attribution profiler; nullptr detaches. */
    void set_profiler(obs::Profiler *prof) { prof_ = prof; }

    const RCacheConfig &config() const { return cfg_; }
    const StatSet &stats() const { return stats_; }

    /** L1 hit fraction among lookups. */
    double
    l1_hit_rate() const
    {
        return stats_.ratio("l1_hits", "lookups");
    }

  private:
    struct Entry
    {
        bool valid = false;
        KernelId kernel = 0;
        BufferId id = 0;
        Bounds bounds;
        std::uint64_t stamp = 0; //!< insertion order (L1) / LRU stamp (L2)
    };

    struct Bank
    {
        std::vector<Entry> l1;
        std::vector<Entry> l2;
        /** L1 insertion-order clock (FIFO; separate from the LRU clock
         *  so hits can never refresh an L1 entry's age). */
        std::uint64_t l1_fifo_stamp = 0;
    };

    Bank &bank_for(KernelId kernel);
    Entry *find(std::vector<Entry> &arr, KernelId kernel, BufferId id);
    void insert_l1(Bank &bank, KernelId kernel, BufferId id,
                   const Bounds &bounds);
    void insert_l2(Bank &bank, KernelId kernel, BufferId id,
                   const Bounds &bounds);

    RCacheConfig cfg_;
    std::vector<Bank> banks_;
    obs::Profiler *prof_ = nullptr;
    std::uint64_t lru_stamp_ = 0; //!< L2 LRU clock
    StatSet stats_;
    // Interned per-lookup counters (resolved once; bumped per event).
    StatSet::Counter c_lookups_, c_l1_hits_, c_l1_misses_, c_l2_hits_,
        c_l2_misses_, c_l1_evictions_, c_l2_evictions_, c_refills_;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_RCACHE_H
