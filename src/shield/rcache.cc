#include "shield/rcache.h"

#include <algorithm>

#include "common/log.h"

namespace gpushield {

RCache::RCache(const RCacheConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.partitions == 0)
        fatal("RCache: at least one partition required");
    banks_.resize(cfg_.partitions);
    for (Bank &bank : banks_) {
        bank.l1.resize(cfg_.l1_entries);
        bank.l2.resize(cfg_.l2_entries);
    }
}

RCache::Bank &
RCache::bank_for(KernelId kernel)
{
    // Kernels hash to banks by warp-scheduler position (§6.2); kernel
    // ID modulo bank count models that assignment.
    return banks_[kernel % cfg_.partitions];
}

RCache::Entry *
RCache::find(std::vector<Entry> &arr, KernelId kernel, BufferId id)
{
    for (Entry &e : arr)
        if (e.valid && e.kernel == kernel && e.id == id)
            return &e;
    return nullptr;
}

RCacheResult
RCache::lookup(KernelId kernel, BufferId id)
{
    stats_.add("lookups");
    RCacheResult result;
    Bank &bank = bank_for(kernel);

    if (Entry *e = find(bank.l1, kernel, id)) {
        stats_.add("l1_hits");
        result.level = RCacheLevel::L1;
        result.bounds = e->bounds;
        return result;
    }
    stats_.add("l1_misses");

    if (Entry *e = find(bank.l2, kernel, id)) {
        stats_.add("l2_hits");
        e->stamp = ++stamp_; // LRU touch
        result.level = RCacheLevel::L2;
        result.bounds = e->bounds;
        insert_l1(bank, kernel, id, e->bounds);
        return result;
    }
    stats_.add("l2_misses");
    return result;
}

void
RCache::insert_l1(Bank &bank, KernelId kernel, BufferId id,
                  const Bounds &bounds)
{
    // FIFO replacement: evict the oldest-inserted entry.
    Entry *victim = &bank.l1[0];
    for (Entry &e : bank.l1) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    *victim = Entry{true, kernel, id, bounds, ++stamp_};
}

void
RCache::insert_l2(Bank &bank, KernelId kernel, BufferId id,
                  const Bounds &bounds)
{
    Entry *victim = &bank.l2[0];
    for (Entry &e : bank.l2) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    if (victim->valid)
        stats_.add("l2_evictions");
    *victim = Entry{true, kernel, id, bounds, ++stamp_};
}

void
RCache::fill(KernelId kernel, BufferId id, const Bounds &bounds)
{
    stats_.add("refills");
    Bank &bank = bank_for(kernel);
    if (!find(bank.l2, kernel, id))
        insert_l2(bank, kernel, id, bounds);
    if (!find(bank.l1, kernel, id))
        insert_l1(bank, kernel, id, bounds);
}

void
RCache::flush()
{
    for (Bank &bank : banks_) {
        for (Entry &e : bank.l1)
            e.valid = false;
        for (Entry &e : bank.l2)
            e.valid = false;
    }
}

} // namespace gpushield
