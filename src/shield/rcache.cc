#include "shield/rcache.h"

#include <algorithm>

#include "common/log.h"
#include "obs/profiler.h"

namespace gpushield {

RCache::RCache(const RCacheConfig &cfg)
    : cfg_(cfg),
      c_lookups_(stats_.counter("lookups")),
      c_l1_hits_(stats_.counter("l1_hits")),
      c_l1_misses_(stats_.counter("l1_misses")),
      c_l2_hits_(stats_.counter("l2_hits")),
      c_l2_misses_(stats_.counter("l2_misses")),
      c_l1_evictions_(stats_.counter("l1_evictions")),
      c_l2_evictions_(stats_.counter("l2_evictions")),
      c_refills_(stats_.counter("refills"))
{
    if (cfg_.partitions == 0)
        fatal("RCache: at least one partition required");
    banks_.resize(cfg_.partitions);
    for (Bank &bank : banks_) {
        bank.l1.resize(cfg_.l1_entries);
        bank.l2.resize(cfg_.l2_entries);
    }
}

RCache::Bank &
RCache::bank_for(KernelId kernel)
{
    // Kernels hash to banks by warp-scheduler position (§6.2); kernel
    // ID modulo bank count models that assignment.
    return banks_[kernel % cfg_.partitions];
}

RCache::Entry *
RCache::find(std::vector<Entry> &arr, KernelId kernel, BufferId id)
{
    for (Entry &e : arr)
        if (e.valid && e.kernel == kernel && e.id == id)
            return &e;
    return nullptr;
}

RCacheResult
RCache::lookup(KernelId kernel, BufferId id)
{
    ++c_lookups_;
    RCacheResult result;
    Bank &bank = bank_for(kernel);

    if (Entry *e = find(bank.l1, kernel, id)) {
        // FIFO L1: a hit does not touch the insertion stamp.
        ++c_l1_hits_;
        result.level = RCacheLevel::L1;
        result.bounds = e->bounds;
        if (prof_ != nullptr)
            prof_->on_rcache_lookup(0);
        return result;
    }
    ++c_l1_misses_;

    if (Entry *e = find(bank.l2, kernel, id)) {
        ++c_l2_hits_;
        e->stamp = ++lru_stamp_; // LRU touch
        result.level = RCacheLevel::L2;
        result.bounds = e->bounds;
        insert_l1(bank, kernel, id, e->bounds);
        if (prof_ != nullptr)
            prof_->on_rcache_lookup(1);
        return result;
    }
    ++c_l2_misses_;
    if (prof_ != nullptr)
        prof_->on_rcache_lookup(2);
    return result;
}

void
RCache::insert_l1(Bank &bank, KernelId kernel, BufferId id,
                  const Bounds &bounds)
{
    // FIFO replacement: evict the oldest-inserted entry. The stamp is
    // assigned once, from the bank's insertion-order clock — never
    // refreshed on hit, and independent of the L2 LRU clock.
    Entry *victim = &bank.l1[0];
    for (Entry &e : bank.l1) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    if (victim->valid)
        ++c_l1_evictions_;
    *victim = Entry{true, kernel, id, bounds, ++bank.l1_fifo_stamp};
}

void
RCache::insert_l2(Bank &bank, KernelId kernel, BufferId id,
                  const Bounds &bounds)
{
    Entry *victim = &bank.l2[0];
    for (Entry &e : bank.l2) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    if (victim->valid)
        ++c_l2_evictions_;
    *victim = Entry{true, kernel, id, bounds, ++lru_stamp_};
}

void
RCache::fill(KernelId kernel, BufferId id, const Bounds &bounds)
{
    ++c_refills_;
    Bank &bank = bank_for(kernel);
    if (!find(bank.l2, kernel, id))
        insert_l2(bank, kernel, id, bounds);
    if (!find(bank.l1, kernel, id))
        insert_l1(bank, kernel, id, bounds);
}

void
RCache::flush()
{
    for (Bank &bank : banks_) {
        for (Entry &e : bank.l1)
            e.valid = false;
        for (Entry &e : bank.l2)
            e.valid = false;
    }
}

void
RCache::invalidate_kernel(KernelId kernel)
{
    // §5.5 requires only the terminating kernel's state to go; entries
    // of concurrently-resident kernels stay cached (§6.2). All of a
    // kernel's entries live in its hash bank.
    Bank &bank = bank_for(kernel);
    for (Entry &e : bank.l1)
        if (e.valid && e.kernel == kernel)
            e.valid = false;
    for (Entry &e : bank.l2)
        if (e.valid && e.kernel == kernel)
            e.valid = false;
}

} // namespace gpushield
