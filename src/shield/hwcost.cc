#include "shield/hwcost.h"

namespace gpushield {

namespace {

// Per-bit coefficients calibrated to the paper's 45nm / 1 GHz synthesis
// (Table 3). Each structure class has different periphery, so the
// coefficients differ per class rather than being one global constant.
struct PerBit
{
    double area_mm2;
    double leakage_uw;
    double dynamic_mw;
};

// Reference geometries used for calibration: L1 = 4 x 107b = 428b,
// L2 tag = 64 x 14b = 896b, L2 data = 64 x 93b = 5952b, comparators = 96b.
constexpr PerBit kL1PerBit = {0.0060 / 428, 26.40 / 428, 22.93 / 428};
constexpr PerBit kL2TagPerBit = {0.0166 / 896, 256.71 / 896, 55.39 / 896};
constexpr PerBit kL2DataPerBit = {0.0568 / 5952, 499.13 / 5952,
                                  104.63 / 5952};
constexpr PerBit kCmpPerBit = {0.0064 / 96, 17.51 / 96, 20.41 / 96};

StructureCost
cost_from_bits(std::string name, unsigned entries, double bits,
               const PerBit &pb, bool is_sram)
{
    StructureCost c;
    c.name = std::move(name);
    c.entries = entries;
    c.sram_bytes = is_sram ? bits / 8.0 : 0.0;
    c.area_mm2 = bits * pb.area_mm2;
    c.leakage_uw = bits * pb.leakage_uw;
    c.dynamic_mw = bits * pb.dynamic_mw;
    return c;
}

} // namespace

HwCostModel::HwCostModel(const HwCostConfig &cfg)
    : cfg_(cfg)
{
}

unsigned
HwCostModel::data_entry_bits() const
{
    return cfg_.base_bits + cfg_.size_bits + cfg_.ro_bits + cfg_.kernel_bits;
}

unsigned
HwCostModel::l1_entry_bits() const
{
    return cfg_.id_bits + data_entry_bits();
}

std::vector<StructureCost>
HwCostModel::breakdown() const
{
    std::vector<StructureCost> rows;
    rows.push_back(cost_from_bits("Comparators", 0, cfg_.comparator_bits,
                                  kCmpPerBit, /*is_sram=*/false));
    rows.push_back(cost_from_bits(
        "L1 RCache", cfg_.l1_entries,
        static_cast<double>(cfg_.l1_entries) * l1_entry_bits(), kL1PerBit,
        /*is_sram=*/true));
    rows.push_back(cost_from_bits(
        "L2 RCache tag", cfg_.l2_entries,
        static_cast<double>(cfg_.l2_entries) * cfg_.id_bits, kL2TagPerBit,
        /*is_sram=*/true));
    rows.push_back(cost_from_bits(
        "L2 RCache data", cfg_.l2_entries,
        static_cast<double>(cfg_.l2_entries) * data_entry_bits(),
        kL2DataPerBit, /*is_sram=*/true));
    return rows;
}

StructureCost
HwCostModel::total() const
{
    StructureCost t;
    t.name = "Total";
    for (const StructureCost &row : breakdown()) {
        t.sram_bytes += row.sram_bytes;
        t.area_mm2 += row.area_mm2;
        t.leakage_uw += row.leakage_uw;
        t.dynamic_mw += row.dynamic_mw;
    }
    return t;
}

double
HwCostModel::total_kb(unsigned num_cores) const
{
    return total().sram_bytes * num_cores / 1024.0;
}

} // namespace gpushield
