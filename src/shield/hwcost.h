/**
 * @file
 * Hardware area/power cost model for the BCU structures (Table 3).
 *
 * The paper synthesizes the comparator logic (Synopsys DC, 45nm FreePDK,
 * 1 GHz) and generates SRAM macros with OpenRAM. Neither tool is
 * available offline, so this model computes structure geometry from
 * first principles (entry counts × field widths) and applies per-bit
 * area/leakage/dynamic-power coefficients calibrated to the paper's
 * published synthesis results. At the default geometry it reproduces
 * Table 3 exactly; changing the geometry (e.g. an 8-entry L1 RCache)
 * scales each structure linearly in its bit count, which is the correct
 * first-order behaviour for such tiny arrays.
 */

#ifndef GPUSHIELD_SHIELD_HWCOST_H
#define GPUSHIELD_SHIELD_HWCOST_H

#include <string>
#include <vector>

namespace gpushield {

/** Geometry knobs of the BCU storage (defaults = paper configuration). */
struct HwCostConfig
{
    unsigned l1_entries = 4;
    unsigned l2_entries = 64;
    unsigned id_bits = 14;     //!< RCache tag: buffer ID
    unsigned base_bits = 48;   //!< bounds base address
    unsigned size_bits = 32;   //!< bounds size
    unsigned ro_bits = 1;      //!< read-only flag
    unsigned kernel_bits = 12; //!< kernel ID
    unsigned comparator_bits = 96; //!< two 48-bit range comparators
};

/** Cost of a single hardware structure. */
struct StructureCost
{
    std::string name;
    unsigned entries = 0;      //!< 0 for pure logic
    double sram_bytes = 0.0;
    double area_mm2 = 0.0;
    double leakage_uw = 0.0;
    double dynamic_mw = 0.0;
};

/** Analytical Table 3 generator. */
class HwCostModel
{
  public:
    explicit HwCostModel(const HwCostConfig &cfg = {});

    /** Bits in one RCache data entry (base+size+ro+kernel). */
    unsigned data_entry_bits() const;

    /** Bits in one full L1 entry (tag + data, stored together). */
    unsigned l1_entry_bits() const;

    /** Per-structure costs, in the paper's row order. */
    std::vector<StructureCost> breakdown() const;

    /** Sum over breakdown(). */
    StructureCost total() const;

    /** Total SRAM (KB) across @p num_cores cores (paper: 14.2KB / 21.3KB). */
    double total_kb(unsigned num_cores) const;

  private:
    HwCostConfig cfg_;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_HWCOST_H
