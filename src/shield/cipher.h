/**
 * @file
 * Per-kernel 14-bit buffer-ID cipher (§5.2.4).
 *
 * The driver encrypts buffer IDs before embedding them in pointers so an
 * attacker who observes a pointer across kernel launches cannot infer or
 * forge IDs. A balanced 4-round Feistel network over 14 bits (7+7) keyed
 * by a 64-bit per-kernel secret provides the bijection; hardware decrypts
 * in the BCU before indexing the RBT.
 */

#ifndef GPUSHIELD_SHIELD_CIPHER_H
#define GPUSHIELD_SHIELD_CIPHER_H

#include <cstdint>

#include "common/types.h"

namespace gpushield {

/** Keyed bijection over 14-bit buffer IDs. */
class IdCipher
{
  public:
    explicit IdCipher(std::uint64_t key = 0);

    /** Replaces the key (new kernel launch). */
    void rekey(std::uint64_t key);

    /** Encrypts a 14-bit ID. */
    std::uint16_t encrypt(std::uint16_t id) const;

    /** Decrypts a 14-bit ciphertext. */
    std::uint16_t decrypt(std::uint16_t enc) const;

    std::uint64_t key() const { return key_; }

  private:
    static constexpr unsigned kRounds = 4;
    static constexpr unsigned kHalfBits = 7;
    static constexpr std::uint16_t kHalfMask = (1u << kHalfBits) - 1;

    /** Round function: keyed 7-bit mix. */
    static std::uint16_t round_fn(std::uint16_t half, std::uint32_t subkey);

    std::uint64_t key_ = 0;
    std::uint32_t subkeys_[kRounds] = {};
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_CIPHER_H
