/**
 * @file
 * Shield-backend selection and per-backend configuration.
 *
 * `ShieldConfig` is the only shield type the simulator configuration
 * (`sim/config.h`) depends on: it names a backend (the tag) and carries
 * one knob struct per backend, so concrete shield headers (RCache, BCU)
 * never leak into the sim layer. The region struct mirrors the historic
 * `RCacheConfig` field names so existing sweep specs keep working
 * unchanged (`cfg.shield.region.l1_latency = ...`).
 */

#ifndef GPUSHIELD_SHIELD_CONFIG_H
#define GPUSHIELD_SHIELD_CONFIG_H

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace gpushield {

/** Which bounds-checking hardware the cores instantiate. */
enum class ShieldBackendKind : std::uint8_t {
    Region, //!< the paper's BCU + RBT + RCache pipeline (default)
    Armor,  //!< GPUArmor-style plaintext tag match, no per-kernel cipher
};

inline const char *
to_string(ShieldBackendKind kind)
{
    switch (kind) {
      case ShieldBackendKind::Region:
        return "region";
      case ShieldBackendKind::Armor:
        return "armor";
    }
    return "?";
}

/** Parses a backend name ("region" / "armor"). @return false on an
 *  unknown name, leaving @p out untouched. */
inline bool
parse_shield_backend(std::string_view name, ShieldBackendKind &out)
{
    if (name == "region") {
        out = ShieldBackendKind::Region;
        return true;
    }
    if (name == "armor") {
        out = ShieldBackendKind::Armor;
        return true;
    }
    return false;
}

/** Region-backend knobs: RCache geometry/latencies (Table 5). Field
 *  names match the historic RCacheConfig. */
struct RegionShieldConfig
{
    unsigned l1_entries = 4;
    unsigned l2_entries = 64;
    Cycle l1_latency = 1;
    Cycle l2_latency = 3;
    /** §6.2 banking: lookups from different kernels contend unless the
     *  cache is partitioned. */
    unsigned partitions = 1;
};

/** Metadata granularity of the Armor backend: region extents round up
 *  to this many bytes, so overflows that stay inside the rounded tail
 *  are a documented (and separately counted) miss class — the analogue
 *  of the Type 3 power-of-two padding cover. */
inline constexpr std::uint32_t kArmorGranule = 512;

/** Armor-backend knobs: tag width and metadata-cache timing. */
struct ArmorShieldConfig
{
    /** Pointer tag bits (of the 14-bit tag field). More bits, fewer
     *  same-kernel tag collisions. */
    unsigned tag_bits = 7;
    /** Per-core metadata-entry cache (single level, FIFO). */
    unsigned cache_entries = 8;
    Cycle cache_hit_latency = 1;
    /** Latency of an in-memory metadata-table walk on a cache miss. */
    Cycle table_latency = 3;
};

/** Tagged per-backend configuration: `backend` selects which knob
 *  struct is live; both are always present so sweep specs can set
 *  fields without variant plumbing. */
struct ShieldConfig
{
    ShieldBackendKind backend = ShieldBackendKind::Region;
    RegionShieldConfig region;
    ArmorShieldConfig armor;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_CONFIG_H
