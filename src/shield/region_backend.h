/**
 * @file
 * Region shield backend: the paper's Bounds-Checking Unit (§5.5).
 *
 * The BCU sits beside each core's LSU. For every memory instruction it
 * receives the tagged pointer, the warp's coalesced address range
 * (min/max across active lanes — the paper's workgroup/warp-level
 * checking), and enough LSU context to decide whether the check latency
 * is exposed as a pipeline bubble (Fig. 12).
 *
 * Type 2 pointers: the embedded ID is decrypted with the per-kernel key
 * and looked up in the RCache hierarchy; an L2 RCache miss triggers an
 * RBT refill (physically addressed, bypassing translation). Type 3
 * pointers carry log2(window) and are checked against base+offset
 * operands with no RCache access. Type 1 pointers skip checking.
 *
 * Timing model: the check completes `rcache_latency` cycles after AGEN.
 * The LSU pipeline shadows `pipeline_slack` cycles for a D-cache hit
 * plus one cycle per additional coalesced transaction; anything beyond
 * that is an exposed stall. With the default 1-cycle L1 RCache this
 * reproduces the paper's "one bubble only on single-transaction D-cache
 * hit with L1 RCache miss" behaviour.
 */

#ifndef GPUSHIELD_SHIELD_REGION_BACKEND_H
#define GPUSHIELD_SHIELD_REGION_BACKEND_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "shield/backend.h"
#include "shield/cipher.h"
#include "shield/rbt.h"
#include "shield/rcache.h"

namespace gpushield {

/** Per-core bounds-checking unit (region backend). */
class RegionShieldBackend : public ShieldBackend
{
  public:
    /**
     * @param cfg            RCache geometry/latencies
     * @param pipeline_slack LSU cycles that shadow the check on a D-cache
     *                       hit (paper: check hides unless it exceeds the
     *                       LSU pipe; 2 reproduces Fig. 12)
     */
    explicit RegionShieldBackend(const RCacheConfig &cfg,
                                 Cycle pipeline_slack = 2);

    ShieldBackendKind kind() const override
    {
        return ShieldBackendKind::Region;
    }
    const char *name() const override { return "region"; }

    void register_kernel(const ShieldKernelDesc &desc) override
    {
        register_kernel(desc.kernel, desc.secret_key, desc.rbt);
    }

    /** Registers a kernel resident on this core (key + its RBT). */
    void register_kernel(KernelId kernel, std::uint64_t key,
                         const RegionBoundsTable *rbt);

    /** Removes a kernel and invalidates its RCache entries (kernel
     *  termination; co-resident kernels keep theirs, §6.2). */
    void deregister_kernel(KernelId kernel) override;

    /** Performs the bounds check for one memory instruction. */
    BcuResponse check(const BcuRequest &req) override;

    /** Violations logged so far (error-logging mode). */
    const std::vector<Violation> &violations() const override
    {
        return violations_;
    }

    /** Clears the violation log (read out by the host at kernel end). */
    void clear_violations() override { violations_.clear(); }

    /** Attaches a stall-attribution profiler (propagated to the
     *  RCache); nullptr detaches. */
    void set_profiler(obs::Profiler *prof) override;

    RCache &rcache() { return rcache_; }
    const RCache &rcache() const { return rcache_; }
    const StatSet &stats() const override { return stats_; }
    StatSet metadata_stats() const override { return rcache_.stats(); }

    const char *
    weakness_label(const ShieldMissContext &ctx) const override;

  private:
    struct KernelState
    {
        IdCipher cipher;
        const RegionBoundsTable *rbt = nullptr;
    };

    void log(const BcuRequest &req, ViolationKind kind);
    Cycle exposed_stall(const BcuRequest &req, Cycle check_latency) const;

    RCache rcache_;
    obs::Profiler *prof_ = nullptr;
    Cycle pipeline_slack_;
    std::unordered_map<KernelId, KernelState> kernels_;
    std::vector<Violation> violations_;
    StatSet stats_;
    // Interned per-check counters (resolved once; bumped per event).
    StatSet::Counter c_checks_, c_bt_checks_, c_type2_checks_,
        c_type3_checks_, c_skipped_unprotected_, c_guard_suppressed_,
        c_violations_, c_stall_cycles_;
};

/** RegionShieldConfig (sim-facing knobs) → RCacheConfig (hardware). */
RCacheConfig to_rcache_config(const RegionShieldConfig &cfg);

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_REGION_BACKEND_H
