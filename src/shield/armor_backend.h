/**
 * @file
 * Armor shield backend: GPUArmor-style tagged-pointer checking.
 *
 * Second hardware point behind the ShieldBackend seam, modeled on
 * GPUArmor (PAPERS.md): the pointer's high bits carry a small plaintext
 * tag (no per-kernel cipher), and each kernel owns a small metadata
 * table of {tag, base, end, read_only} entries with extents rounded up
 * to `kArmorGranule`. A check passes iff some same-tag entry of the
 * issuing kernel contains the warp's coalesced range.
 *
 * Documented false-negative classes (counted separately by the
 * conformance oracle, like the region backend's Type 3 padding cover):
 *
 *  - granule slop: an overflow that stays inside the granule-rounded
 *    tail of its own region ("padding" lanes);
 *  - tag collision: an overflow that lands inside a *different*
 *    same-kernel region that happens to share the tag
 *    (`weakness_label` → "tag_collision").
 *
 * Timing model mirrors the region backend's exposed-stall rule: a
 * metadata-cache hit costs `cache_hit_latency`, a miss walks the
 * in-memory table (`table_latency`) and issues refill traffic to the
 * entry's physical slot; the LSU pipeline shadows `pipeline_slack`
 * cycles plus one per extra coalesced transaction.
 */

#ifndef GPUSHIELD_SHIELD_ARMOR_BACKEND_H
#define GPUSHIELD_SHIELD_ARMOR_BACKEND_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "shield/backend.h"

namespace gpushield {

/** Per-core Armor metadata-check unit. */
class ArmorShieldBackend : public ShieldBackend
{
  public:
    explicit ArmorShieldBackend(const ArmorShieldConfig &cfg,
                                Cycle pipeline_slack = 2);

    ShieldBackendKind kind() const override
    {
        return ShieldBackendKind::Armor;
    }
    const char *name() const override { return "armor"; }

    void register_kernel(const ShieldKernelDesc &desc) override;
    void deregister_kernel(KernelId kernel) override;
    BcuResponse check(const BcuRequest &req) override;

    const std::vector<Violation> &violations() const override
    {
        return violations_;
    }
    void clear_violations() override { violations_.clear(); }

    const StatSet &stats() const override { return stats_; }
    StatSet metadata_stats() const override { return meta_stats_; }

    void set_profiler(obs::Profiler *prof) override { prof_ = prof; }

    const char *
    weakness_label(const ShieldMissContext &ctx) const override;

  private:
    struct Entry
    {
        BufferId id = 0;
        std::uint16_t tag = 0;
        VAddr base = 0;
        VAddr end = 0; //!< granule-rounded one-past-end
        bool read_only = false;
    };

    struct KernelState
    {
        const RegionBoundsTable *rbt = nullptr;
        std::vector<Entry> entries;
    };

    void log(const BcuRequest &req, ViolationKind kind);
    Cycle exposed_stall(const BcuRequest &req, Cycle check_latency) const;
    /** FIFO metadata-entry cache probe; fills on miss. */
    bool cache_lookup(KernelId kernel, BufferId id);

    ArmorShieldConfig cfg_;
    obs::Profiler *prof_ = nullptr;
    Cycle pipeline_slack_;
    std::unordered_map<KernelId, KernelState> kernels_;

    /** Single-level FIFO cache of recently used metadata entries. */
    struct CacheLine
    {
        KernelId kernel = 0;
        BufferId id = 0;
        bool valid = false;
    };
    std::vector<CacheLine> cache_;
    std::size_t cache_fifo_ = 0;

    std::vector<Violation> violations_;
    StatSet stats_;
    StatSet meta_stats_;
    StatSet::Counter c_checks_, c_bt_checks_, c_tag_checks_,
        c_skipped_unprotected_, c_guard_suppressed_, c_violations_,
        c_stall_cycles_;
    StatSet::Counter c_lookups_, c_l1_hits_, c_l1_misses_, c_refills_;
};

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_ARMOR_BACKEND_H
