#include "shield/backend.h"

#include "common/log.h"
#include "shield/armor_backend.h"
#include "shield/region_backend.h"

namespace gpushield {

std::unique_ptr<ShieldBackend>
make_shield_backend(ShieldBackendKind kind, const ShieldConfig &cfg,
                    Cycle pipeline_slack)
{
    switch (kind) {
      case ShieldBackendKind::Region:
        return std::make_unique<RegionShieldBackend>(
            to_rcache_config(cfg.region), pipeline_slack);
      case ShieldBackendKind::Armor:
        return std::make_unique<ArmorShieldBackend>(cfg.armor,
                                                    pipeline_slack);
    }
    panic("make_shield_backend: unknown backend kind");
    return nullptr;
}

std::unique_ptr<ShieldBackend>
make_shield_backend(const ShieldConfig &cfg, Cycle pipeline_slack)
{
    return make_shield_backend(cfg.backend, cfg, pipeline_slack);
}

} // namespace gpushield
