#include "shield/rbt.h"

#include "common/bitutil.h"

namespace gpushield {

namespace {

// Serialized layout: word0 = valid<<63 | read_only<<62 | base[47:0];
// word1 = size (low 32) | kernel (next 16).
constexpr unsigned kValidBit = 63;
constexpr unsigned kReadOnlyBit = 62;

} // namespace

RegionBoundsTable::RegionBoundsTable(PhysicalMemory &mem, PAddr base)
    : mem_(mem), base_(base)
{
}

void
RegionBoundsTable::set(BufferId id, const Bounds &bounds)
{
    const PAddr at = entry_paddr(id);
    std::uint64_t word0 = bounds.base_addr & kVAddrMask;
    word0 = insert_bits(word0, kValidBit, 1, bounds.valid ? 1 : 0);
    word0 = insert_bits(word0, kReadOnlyBit, 1, bounds.read_only ? 1 : 0);
    const std::uint64_t word1 =
        static_cast<std::uint64_t>(bounds.size) |
        (static_cast<std::uint64_t>(bounds.kernel) << 32);
    mem_.write_as<std::uint64_t>(at, word0);
    mem_.write_as<std::uint64_t>(at + 8, word1);
}

Bounds
RegionBoundsTable::get(BufferId id) const
{
    const PAddr at = entry_paddr(id);
    const auto word0 = mem_.read_as<std::uint64_t>(at);
    const auto word1 = mem_.read_as<std::uint64_t>(at + 8);
    Bounds b;
    b.valid = bits(word0, kValidBit, 1) != 0;
    b.read_only = bits(word0, kReadOnlyBit, 1) != 0;
    b.base_addr = word0 & kVAddrMask;
    b.size = static_cast<std::uint32_t>(word1 & 0xFFFFFFFFull);
    b.kernel = static_cast<KernelId>(bits(word1, 32, 16));
    return b;
}

void
RegionBoundsTable::clear_all()
{
    mem_.fill(base_, 0, kTableBytes);
}

} // namespace gpushield
