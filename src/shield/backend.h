/**
 * @file
 * Pluggable shield-backend interface.
 *
 * A `ShieldBackend` is the per-core bounds-checking hardware point: the
 * sim's LSU hands it one `BcuRequest` per global memory instruction and
 * applies the verdict/timing from the `BcuResponse`; the driver's
 * launch-time metadata reaches it through `register_kernel`. Two
 * implementations exist:
 *
 *  - `RegionShieldBackend` (shield/region_backend.h): the paper's
 *    BCU + RBT + RCache pipeline with per-kernel encrypted buffer IDs.
 *  - `ArmorShieldBackend` (shield/armor_backend.h): a GPUArmor-style
 *    plaintext pointer tag matched against a small per-kernel metadata
 *    table — no cipher, coarser (granule-rounded) bounds.
 *
 * The request/response/violation types are shared: they describe what
 * the LSU knows and what the core needs, not how a backend decides.
 */

#ifndef GPUSHIELD_SHIELD_BACKEND_H
#define GPUSHIELD_SHIELD_BACKEND_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "shield/config.h"
#include "shield/rbt.h"

namespace gpushield::obs {
class Profiler;
}

namespace gpushield {

/** Classification of a detected memory-safety violation. */
enum class ViolationKind : std::uint8_t {
    OutOfBounds,   //!< address range escapes the buffer region
    ReadOnlyWrite, //!< store to a read-only buffer
    InvalidEntry,  //!< decrypted ID hit an invalid RBT entry (forged ptr)
    KernelMismatch //!< entry belongs to another kernel
};

/** One logged violation (error-logging mode of §5.5.2). */
struct Violation
{
    KernelId kernel = 0;
    /** Tenant that issued the faulting access (service mode; 0 =
     *  single-tenant). Makes cross-tenant attacks attributable. */
    TenantId tenant = 0;
    CoreId core = 0;
    int pc = -1;
    WarpId warp = 0;
    bool is_store = false;
    VAddr min_addr = 0;
    VAddr max_end = 0;
    ViolationKind kind = ViolationKind::OutOfBounds;
};

/** Everything the LSU hands the shield for one memory instruction. */
struct BcuRequest
{
    KernelId kernel = 0;
    TenantId tenant = 0;
    CoreId core = 0;
    WarpId warp = 0;
    int pc = -1;

    std::uint64_t pointer = 0; //!< tagged address-register value
    VAddr min_addr = 0;        //!< lowest byte touched by the warp
    VAddr max_end = 0;         //!< one past the highest byte touched
    bool is_store = false;

    unsigned num_transactions = 1; //!< coalesced transaction count
    bool dcache_hit = false;       //!< first transaction L1 D-cache hit

    /** Base+offset (Method C / Type 3) operands, when the instruction
     *  uses that addressing mode. Offsets are relative to the base. */
    bool has_base_offset = false;
    std::int64_t min_offset = 0;
    std::int64_t max_offset_end = 0; //!< one past the highest offset byte

    /** Method A (binding table): the driver-managed BT entry supplies
     *  exact bounds, so the check is direct — no decrypt, no RCache. */
    bool has_bt_bounds = false;
    Bounds bt_bounds;

    /**
     * §6.4 guard replacement: the compiler removed a redundant software
     * guard because GPUShield subsumes it. Violations through this
     * instruction are the *expected* squashes of the formerly-guarded
     * lanes — suppress without logging (counted separately).
     */
    bool silent = false;
};

/** Shield verdict and timing for one memory instruction. */
struct BcuResponse
{
    bool checked = false;   //!< a runtime check was performed
    bool violation = false;
    ViolationKind kind = ViolationKind::OutOfBounds;
    Cycle stall_cycles = 0; //!< exposed pipeline bubble at issue
    bool refill = false;    //!< metadata refill traffic required
    PAddr refill_paddr = 0; //!< metadata entry address for the refill

    /**
     * Valid region for lane-granular squashing: detection happens at
     * warp granularity (min/max), but the store pipeline knows each
     * lane's address, so only lanes outside [region_base, region_end)
     * are dropped / zero-filled. Unset when no region applies (invalid
     * entry, kernel mismatch, read-only write): then every lane
     * squashes.
     */
    bool region_known = false;
    VAddr region_base = 0;
    VAddr region_end = 0;
};

/**
 * Canonical Armor pointer tag for a namespace slot: a 14-bit fold of
 * the buffer ID that both the driver (signing pointers) and the Armor
 * backend (masking to its configured `tag_bits`) derive from, so the
 * two stay consistent for any tag width. Plaintext by design — Armor
 * has no per-kernel cipher; aliasing under the mask is the backend's
 * documented weakness.
 */
inline std::uint16_t
armor_ptr_tag(BufferId id)
{
    return static_cast<std::uint16_t>(
        (id ^ (id >> 7) ^ (id << 3)) & 0x3FFFu);
}

/** One protected region as the driver installed it: the namespace slot
 *  (RBT index), the plaintext tag an Armor pointer carries for it, and
 *  its exact bounds. The launch state carries the full list so backends
 *  and the conformance oracle see the same metadata. */
struct ShieldRegionDesc
{
    BufferId id = 0;
    std::uint16_t tag = 0;
    Bounds bounds;
};

/** Launch-time metadata handed to a backend when a kernel becomes
 *  resident on a core. Backends take what they need: Region uses the
 *  cipher key + RBT, Armor uses the region list (bounds + tags). */
struct ShieldKernelDesc
{
    KernelId kernel = 0;
    std::uint64_t secret_key = 0;
    const RegionBoundsTable *rbt = nullptr;
    const std::vector<ShieldRegionDesc> *regions = nullptr;
};

/** Context for classifying a bounds violation the shield did NOT flag
 *  (conformance oracle): enough to decide whether the miss falls into
 *  a backend's documented weakness class. */
struct ShieldMissContext
{
    std::uint64_t pointer = 0;
    bool has_bt = false;
    bool has_base_offset = false;
    KernelId kernel = 0;
    VAddr min_addr = 0; //!< lowest truly-violating byte
    VAddr max_end = 0;  //!< one past the highest truly-violating byte
    const std::vector<ShieldRegionDesc> *regions = nullptr;
};

/** Per-core pluggable bounds-checking hardware. */
class ShieldBackend
{
  public:
    virtual ~ShieldBackend() = default;

    virtual ShieldBackendKind kind() const = 0;
    virtual const char *name() const = 0;

    /** Registers a kernel resident on this core. */
    virtual void register_kernel(const ShieldKernelDesc &desc) = 0;

    /** Removes a kernel and drops its cached metadata (kernel
     *  termination; co-resident kernels keep theirs, §6.2). */
    virtual void deregister_kernel(KernelId kernel) = 0;

    /** Performs the bounds check for one memory instruction. */
    virtual BcuResponse check(const BcuRequest &req) = 0;

    /** Violations logged so far (error-logging mode). */
    virtual const std::vector<Violation> &violations() const = 0;

    /** Clears the violation log (read out by the host at kernel end). */
    virtual void clear_violations() = 0;

    /** Check/violation/stall counters. */
    virtual const StatSet &stats() const = 0;

    /** Metadata-lookup counters (RCache levels for Region, entry cache
     *  for Armor). Both backends use the "lookups"/"l1_hits"/"refills"
     *  names so hit-rate ratios work unchanged. */
    virtual StatSet metadata_stats() const = 0;

    /** Attaches a stall-attribution profiler; nullptr detaches. */
    virtual void set_profiler(obs::Profiler *prof) = 0;

    /**
     * Classifies a true bounds violation this backend checked but did
     * not flag. @return a stable label for the documented weakness
     * class the miss falls into ("type3_weak" for the region backend's
     * Method-B sized-pointer checks, "tag_collision" for Armor's
     * same-kernel tag aliasing), or nullptr for a hard miss — a bug.
     */
    virtual const char *
    weakness_label(const ShieldMissContext &ctx) const = 0;
};

/** Creates the backend @p cfg.backend selects. @p pipeline_slack is the
 *  LSU shadow for the exposed-stall model (GpuConfig::lsu_pipeline_slack). */
std::unique_ptr<ShieldBackend>
make_shield_backend(const ShieldConfig &cfg, Cycle pipeline_slack);

/** Same, with the kind overridden (per-kernel backend routing). */
std::unique_ptr<ShieldBackend>
make_shield_backend(ShieldBackendKind kind, const ShieldConfig &cfg,
                    Cycle pipeline_slack);

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_BACKEND_H
