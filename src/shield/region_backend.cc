#include "shield/region_backend.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/log.h"
#include "obs/profiler.h"
#include "shield/pointer.h"

namespace gpushield {

RCacheConfig
to_rcache_config(const RegionShieldConfig &cfg)
{
    RCacheConfig rc;
    rc.l1_entries = cfg.l1_entries;
    rc.l2_entries = cfg.l2_entries;
    rc.l1_latency = cfg.l1_latency;
    rc.l2_latency = cfg.l2_latency;
    rc.partitions = cfg.partitions;
    return rc;
}

RegionShieldBackend::RegionShieldBackend(const RCacheConfig &cfg,
                                         Cycle pipeline_slack)
    : rcache_(cfg), pipeline_slack_(pipeline_slack),
      c_checks_(stats_.counter("checks")),
      c_bt_checks_(stats_.counter("bt_checks")),
      c_type2_checks_(stats_.counter("type2_checks")),
      c_type3_checks_(stats_.counter("type3_checks")),
      c_skipped_unprotected_(stats_.counter("skipped_unprotected")),
      c_guard_suppressed_(stats_.counter("guard_suppressed")),
      c_violations_(stats_.counter("violations")),
      c_stall_cycles_(stats_.counter("stall_cycles"))
{
}

void
RegionShieldBackend::set_profiler(obs::Profiler *prof)
{
    prof_ = prof;
    rcache_.set_profiler(prof);
}

void
RegionShieldBackend::register_kernel(KernelId kernel, std::uint64_t key,
                                     const RegionBoundsTable *rbt)
{
    KernelState state;
    state.cipher.rekey(key);
    state.rbt = rbt;
    kernels_[kernel] = state;
}

void
RegionShieldBackend::deregister_kernel(KernelId kernel)
{
    kernels_.erase(kernel);
    // §5.5: only the terminating kernel's RCache state is dropped;
    // concurrently-resident kernels keep their cached bounds (§6.2).
    rcache_.invalidate_kernel(kernel);
}

void
RegionShieldBackend::log(const BcuRequest &req, ViolationKind kind)
{
    if (req.silent) {
        // §6.4 guard replacement: the squash is expected behaviour of
        // the removed software guard, not an error.
        ++c_guard_suppressed_;
        return;
    }
    Violation v;
    v.kernel = req.kernel;
    v.tenant = req.tenant;
    v.core = req.core;
    v.pc = req.pc;
    v.warp = req.warp;
    v.is_store = req.is_store;
    v.min_addr = req.min_addr;
    v.max_end = req.max_end;
    v.kind = kind;
    violations_.push_back(v);
    ++c_violations_;
}

Cycle
RegionShieldBackend::exposed_stall(const BcuRequest &req,
                                   Cycle check_latency) const
{
    // The LSU pipeline shadows the check: a D-cache hit exposes only
    // what exceeds the remaining pipeline depth; each extra coalesced
    // transaction occupies the LSU one more cycle; a D-cache miss hides
    // everything (Fig. 12).
    if (!req.dcache_hit)
        return 0;
    const Cycle shadow =
        pipeline_slack_ + (req.num_transactions > 0
                               ? req.num_transactions - 1
                               : 0);
    return check_latency > shadow ? check_latency - shadow : 0;
}

BcuResponse
RegionShieldBackend::check(const BcuRequest &req)
{
    BcuResponse resp;

    if (req.has_bt_bounds) {
        // Method A: compare against the binding-table entry directly.
        resp.checked = true;
        ++c_checks_;
        ++c_bt_checks_;
        const Bounds &b = req.bt_bounds;
        if (req.is_store && b.read_only) {
            resp.violation = true;
            resp.kind = ViolationKind::ReadOnlyWrite;
            log(req, resp.kind);
        } else if (!b.contains(req.min_addr, req.max_end - req.min_addr)) {
            resp.violation = true;
            resp.kind = ViolationKind::OutOfBounds;
            resp.region_known = true;
            resp.region_base = b.base_addr;
            resp.region_end = b.base_addr + b.size;
            log(req, resp.kind);
        }
        if (prof_ != nullptr)
            prof_->on_bcu_check(resp.stall_cycles, resp.violation);
        return resp;
    }

    const PtrClass cls = ptr_class(req.pointer);

    if (cls == PtrClass::Unprotected) {
        ++c_skipped_unprotected_;
        return resp;
    }

    resp.checked = true;
    ++c_checks_;

    if (cls == PtrClass::SizedWindow) {
        // Type 3: compare offsets against the embedded power-of-two
        // window; no RCache access (§5.3.3).
        ++c_type3_checks_;
        const std::uint64_t window = std::uint64_t{1} << ptr_field(req.pointer);
        bool oob;
        if (req.has_base_offset) {
            oob = req.min_offset < 0 ||
                  static_cast<std::uint64_t>(req.max_offset_end) > window;
        } else {
            // Fallback for Method B dereferences of a sized pointer:
            // detect window-boundary crossings.
            oob = align_down(req.min_addr, window) !=
                  align_down(req.max_end - 1, window);
        }
        if (oob) {
            resp.violation = true;
            resp.kind = ViolationKind::OutOfBounds;
            if (req.has_base_offset) {
                resp.region_known = true;
                resp.region_base = ptr_addr(req.pointer);
                resp.region_end = resp.region_base + window;
            }
            log(req, resp.kind);
        }
        // Offset comparison completes in the address-gather stage; no
        // exposed stall.
        if (prof_ != nullptr)
            prof_->on_bcu_check(resp.stall_cycles, resp.violation);
        return resp;
    }

    // Type 2: decrypt the ID and consult the RCache hierarchy.
    ++c_type2_checks_;
    const auto it = kernels_.find(req.kernel);
    if (it == kernels_.end())
        panic("BCU: check for unregistered kernel");
    KernelState &ks = it->second;

    const BufferId id = ks.cipher.decrypt(ptr_field(req.pointer));
    RCacheResult rc = rcache_.lookup(req.kernel, id);

    Bounds bounds;
    Cycle check_latency;
    switch (rc.level) {
      case RCacheLevel::L1:
        bounds = rc.bounds;
        check_latency = rcache_.config().l1_latency;
        break;
      case RCacheLevel::L2:
        bounds = rc.bounds;
        check_latency = rcache_.config().l2_latency;
        break;
      case RCacheLevel::Miss:
      default:
        // Functional refill from the RBT; the caller models the memory
        // round-trip using refill_paddr.
        bounds = ks.rbt->get(id);
        rcache_.fill(req.kernel, id, bounds);
        resp.refill = true;
        resp.refill_paddr = ks.rbt->entry_paddr(id);
        check_latency = rcache_.config().l2_latency;
        break;
    }

    if (!bounds.valid) {
        resp.violation = true;
        resp.kind = ViolationKind::InvalidEntry;
        log(req, resp.kind);
    } else if (bounds.kernel != req.kernel) {
        resp.violation = true;
        resp.kind = ViolationKind::KernelMismatch;
        log(req, resp.kind);
    } else if (req.is_store && bounds.read_only) {
        resp.violation = true;
        resp.kind = ViolationKind::ReadOnlyWrite;
        log(req, resp.kind);
    } else if (req.min_addr < bounds.base_addr ||
               req.max_end > bounds.base_addr + bounds.size) {
        resp.violation = true;
        resp.kind = ViolationKind::OutOfBounds;
        resp.region_known = true;
        resp.region_base = bounds.base_addr;
        resp.region_end = bounds.base_addr + bounds.size;
        log(req, resp.kind);
    }

    resp.stall_cycles = exposed_stall(req, check_latency);
    if (resp.stall_cycles > 0)
        c_stall_cycles_ += resp.stall_cycles;
    if (prof_ != nullptr)
        prof_->on_bcu_check(resp.stall_cycles, resp.violation);
    return resp;
}

const char *
RegionShieldBackend::weakness_label(const ShieldMissContext &ctx) const
{
    // The only checked-but-unflagged class this backend documents:
    // Method-B dereferences of a Type 3 (sized-window) pointer only
    // detect window-boundary crossings, so an overflow that lands in a
    // same-window sibling position escapes (CONFORMANCE.md).
    if (!ctx.has_bt && !ctx.has_base_offset &&
        ptr_class(ctx.pointer) == PtrClass::SizedWindow)
        return "type3_weak";
    return nullptr;
}

} // namespace gpushield
