#include "shield/armor_backend.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/log.h"
#include "obs/profiler.h"
#include "shield/pointer.h"

namespace gpushield {

ArmorShieldBackend::ArmorShieldBackend(const ArmorShieldConfig &cfg,
                                       Cycle pipeline_slack)
    : cfg_(cfg), pipeline_slack_(pipeline_slack),
      cache_(std::max(1u, cfg.cache_entries)),
      c_checks_(stats_.counter("checks")),
      c_bt_checks_(stats_.counter("bt_checks")),
      c_tag_checks_(stats_.counter("tag_checks")),
      c_skipped_unprotected_(stats_.counter("skipped_unprotected")),
      c_guard_suppressed_(stats_.counter("guard_suppressed")),
      c_violations_(stats_.counter("violations")),
      c_stall_cycles_(stats_.counter("stall_cycles")),
      c_lookups_(meta_stats_.counter("lookups")),
      c_l1_hits_(meta_stats_.counter("l1_hits")),
      c_l1_misses_(meta_stats_.counter("l1_misses")),
      c_refills_(meta_stats_.counter("refills"))
{
}

void
ArmorShieldBackend::register_kernel(const ShieldKernelDesc &desc)
{
    KernelState ks;
    ks.rbt = desc.rbt;
    if (desc.regions != nullptr) {
        ks.entries.reserve(desc.regions->size());
        for (const ShieldRegionDesc &r : *desc.regions) {
            Entry e;
            e.id = r.id;
            e.tag = static_cast<std::uint16_t>(
                r.tag & ((1u << cfg_.tag_bits) - 1u));
            e.base = r.bounds.base_addr;
            // Coarse metadata: extents round up to the granule, so the
            // rounded tail is inside the checked region (documented
            // slop, see header).
            e.end = r.bounds.base_addr +
                    align_up(static_cast<VAddr>(r.bounds.size),
                             static_cast<VAddr>(kArmorGranule));
            e.read_only = r.bounds.read_only;
            ks.entries.push_back(e);
        }
    }
    kernels_[desc.kernel] = std::move(ks);
}

void
ArmorShieldBackend::deregister_kernel(KernelId kernel)
{
    kernels_.erase(kernel);
    for (CacheLine &line : cache_)
        if (line.valid && line.kernel == kernel)
            line.valid = false;
}

void
ArmorShieldBackend::log(const BcuRequest &req, ViolationKind kind)
{
    if (req.silent) {
        ++c_guard_suppressed_;
        return;
    }
    Violation v;
    v.kernel = req.kernel;
    v.tenant = req.tenant;
    v.core = req.core;
    v.pc = req.pc;
    v.warp = req.warp;
    v.is_store = req.is_store;
    v.min_addr = req.min_addr;
    v.max_end = req.max_end;
    v.kind = kind;
    violations_.push_back(v);
    ++c_violations_;
}

Cycle
ArmorShieldBackend::exposed_stall(const BcuRequest &req,
                                  Cycle check_latency) const
{
    // Same shadow rule as the region backend (Fig. 12): a D-cache miss
    // hides everything; each extra coalesced transaction widens the
    // shadow by one cycle.
    if (!req.dcache_hit)
        return 0;
    const Cycle shadow =
        pipeline_slack_ + (req.num_transactions > 0
                               ? req.num_transactions - 1
                               : 0);
    return check_latency > shadow ? check_latency - shadow : 0;
}

bool
ArmorShieldBackend::cache_lookup(KernelId kernel, BufferId id)
{
    ++c_lookups_;
    for (const CacheLine &line : cache_) {
        if (line.valid && line.kernel == kernel && line.id == id) {
            ++c_l1_hits_;
            return true;
        }
    }
    ++c_l1_misses_;
    cache_[cache_fifo_] = CacheLine{kernel, id, true};
    cache_fifo_ = (cache_fifo_ + 1) % cache_.size();
    return false;
}

BcuResponse
ArmorShieldBackend::check(const BcuRequest &req)
{
    BcuResponse resp;

    if (req.has_bt_bounds) {
        // Method A (binding table) is backend-independent: the BT
        // entry supplies exact bounds regardless of the pointer scheme.
        resp.checked = true;
        ++c_checks_;
        ++c_bt_checks_;
        const Bounds &b = req.bt_bounds;
        if (req.is_store && b.read_only) {
            resp.violation = true;
            resp.kind = ViolationKind::ReadOnlyWrite;
            log(req, resp.kind);
        } else if (!b.contains(req.min_addr, req.max_end - req.min_addr)) {
            resp.violation = true;
            resp.kind = ViolationKind::OutOfBounds;
            resp.region_known = true;
            resp.region_base = b.base_addr;
            resp.region_end = b.base_addr + b.size;
            log(req, resp.kind);
        }
        if (prof_ != nullptr)
            prof_->on_bcu_check(resp.stall_cycles, resp.violation);
        return resp;
    }

    if (ptr_class(req.pointer) == PtrClass::Unprotected) {
        ++c_skipped_unprotected_;
        return resp;
    }

    resp.checked = true;
    ++c_checks_;
    ++c_tag_checks_;

    const auto it = kernels_.find(req.kernel);
    if (it == kernels_.end())
        panic("Armor: check for unregistered kernel");
    KernelState &ks = it->second;

    const std::uint16_t tag = static_cast<std::uint16_t>(
        ptr_field(req.pointer) & ((1u << cfg_.tag_bits) - 1u));

    // Associative tag match over the kernel's metadata entries: the
    // access passes iff some same-tag entry contains it (and allows
    // the store). Several regions may share a tag — that aliasing is
    // the backend's documented weakness, not a wildcard: a range no
    // same-tag entry contains still faults.
    const Entry *tag_match = nullptr;   // any entry with this tag
    const Entry *containing = nullptr;  // tag match containing the range
    bool ro_blocked = false;
    for (const Entry &e : ks.entries) {
        if (e.tag != tag)
            continue;
        if (tag_match == nullptr)
            tag_match = &e;
        if (req.min_addr >= e.base && req.max_end <= e.end) {
            if (req.is_store && e.read_only) {
                ro_blocked = true;
                continue;
            }
            containing = &e;
            break;
        }
    }

    Cycle check_latency = cfg_.table_latency;
    if (containing != nullptr || tag_match != nullptr) {
        const Entry &timed =
            containing != nullptr ? *containing : *tag_match;
        if (cache_lookup(req.kernel, timed.id)) {
            check_latency = cfg_.cache_hit_latency;
        } else {
            // Metadata walk: refill traffic to the entry's physical
            // slot, exactly like an RBT refill.
            resp.refill = true;
            resp.refill_paddr =
                ks.rbt != nullptr ? ks.rbt->entry_paddr(timed.id) : 0;
        }
    }

    if (containing == nullptr) {
        resp.violation = true;
        if (ro_blocked) {
            resp.kind = ViolationKind::ReadOnlyWrite;
        } else if (tag_match != nullptr) {
            resp.kind = ViolationKind::OutOfBounds;
            resp.region_known = true;
            resp.region_base = tag_match->base;
            resp.region_end = tag_match->end;
        } else {
            // No metadata entry carries this tag: forged or stale
            // pointer.
            resp.kind = ViolationKind::InvalidEntry;
        }
        log(req, resp.kind);
    }

    resp.stall_cycles = exposed_stall(req, check_latency);
    if (resp.stall_cycles > 0)
        c_stall_cycles_ += resp.stall_cycles;
    if (prof_ != nullptr)
        prof_->on_bcu_check(resp.stall_cycles, resp.violation);
    return resp;
}

const char *
ArmorShieldBackend::weakness_label(const ShieldMissContext &ctx) const
{
    if (ctx.has_bt || ctx.regions == nullptr)
        return nullptr;
    const std::uint16_t tag = static_cast<std::uint16_t>(
        ptr_field(ctx.pointer) & ((1u << cfg_.tag_bits) - 1u));
    // A truly-violating range the check passed must have landed inside
    // a same-tag entry (rounded extents) — same-kernel tag aliasing.
    for (const ShieldRegionDesc &r : *ctx.regions) {
        const std::uint16_t rtag = static_cast<std::uint16_t>(
            r.tag & ((1u << cfg_.tag_bits) - 1u));
        if (rtag != tag)
            continue;
        const VAddr end =
            r.bounds.base_addr +
            align_up(static_cast<VAddr>(r.bounds.size),
                     static_cast<VAddr>(kArmorGranule));
        if (ctx.min_addr >= r.bounds.base_addr && ctx.max_end <= end)
            return "tag_collision";
    }
    return nullptr;
}

} // namespace gpushield
