/**
 * @file
 * Tagged-pointer formats (Fig. 7 of the paper).
 *
 * A 64-bit GPU pointer carries a 2-bit class field (C) in bits [63:62],
 * a 14-bit metadata field in bits [61:48], and the 48-bit canonical
 * virtual address in bits [47:0]:
 *
 *   C = 0  Type 1  unprotected — bounds checking skipped (statically safe)
 *   C = 1  Type 2  base type   — field holds the encrypted buffer ID
 *   C = 2  Type 3  offset opt. — field holds log2 of the buffer window
 *
 * Tags survive pointer arithmetic naturally because offsets only touch
 * the low 48 bits (§5.2.4).
 */

#ifndef GPUSHIELD_SHIELD_POINTER_H
#define GPUSHIELD_SHIELD_POINTER_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace gpushield {

/** Pointer class encoded in the C field. */
enum class PtrClass : std::uint8_t {
    Unprotected = 0, //!< Type 1: skip bounds checking
    TaggedId = 1,    //!< Type 2: encrypted buffer ID in the field
    SizedWindow = 2, //!< Type 3: log2(window size) in the field
};

/** Builds a Type 1 (unprotected) pointer. */
std::uint64_t make_unprotected_ptr(VAddr addr);

/** Builds a Type 2 pointer embedding @p encrypted_id. */
std::uint64_t make_tagged_ptr(VAddr addr, std::uint16_t encrypted_id);

/** Builds a Type 3 pointer embedding @p log2_size (window = 2^log2_size). */
std::uint64_t make_sized_ptr(VAddr addr, unsigned log2_size);

/** Extracts the pointer class. Values 3 decode as Unprotected. */
PtrClass ptr_class(std::uint64_t ptr);

/** Extracts the 14-bit metadata field. */
std::uint16_t ptr_field(std::uint64_t ptr);

/** Extracts the canonical 48-bit address. */
VAddr ptr_addr(std::uint64_t ptr);

/** Debugging aid: "T2[id=0x1148]+0x2512546000". */
std::string ptr_to_string(std::uint64_t ptr);

} // namespace gpushield

#endif // GPUSHIELD_SHIELD_POINTER_H
