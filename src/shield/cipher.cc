#include "shield/cipher.h"

#include "common/rng.h"

namespace gpushield {

IdCipher::IdCipher(std::uint64_t key)
{
    rekey(key);
}

void
IdCipher::rekey(std::uint64_t key)
{
    key_ = key;
    std::uint64_t sm = key ^ 0xA5A5A5A5A5A5A5A5ull;
    for (auto &sk : subkeys_)
        sk = static_cast<std::uint32_t>(splitmix64(sm));
}

std::uint16_t
IdCipher::round_fn(std::uint16_t half, std::uint32_t subkey)
{
    // Small keyed mix; only the low 7 bits of the result are used.
    std::uint32_t x = (half ^ subkey) * 0x9E37u;
    x ^= x >> 5;
    x *= 0x85EBu;
    x ^= x >> 7;
    return static_cast<std::uint16_t>(x & kHalfMask);
}

std::uint16_t
IdCipher::encrypt(std::uint16_t id) const
{
    std::uint16_t left = (id >> kHalfBits) & kHalfMask;
    std::uint16_t right = id & kHalfMask;
    for (unsigned r = 0; r < kRounds; ++r) {
        const std::uint16_t next_left = right;
        right = left ^ round_fn(right, subkeys_[r]);
        left = next_left;
    }
    return static_cast<std::uint16_t>((left << kHalfBits) | right);
}

std::uint16_t
IdCipher::decrypt(std::uint16_t enc) const
{
    std::uint16_t left = (enc >> kHalfBits) & kHalfMask;
    std::uint16_t right = enc & kHalfMask;
    for (unsigned r = kRounds; r-- > 0;) {
        const std::uint16_t prev_right = left;
        left = right ^ round_fn(left, subkeys_[r]);
        right = prev_right;
    }
    return static_cast<std::uint16_t>((left << kHalfBits) | right);
}

} // namespace gpushield
